// Command dvvbench regenerates the paper's tables and figures (see the
// experiment index in DESIGN.md and the results in EXPERIMENTS.md).
//
// Usage:
//
//	dvvbench -experiment all            # every table
//	dvvbench -experiment fig1           # Figure 1 replay (3 panels)
//	dvvbench -experiment verdict        # Figure 1 verdict summary
//	dvvbench -experiment compare        # C1: O(1) vs O(n) check cost
//	dvvbench -experiment metadata       # C2: metadata vs writer count
//	dvvbench -experiment siblings       # C2b: sibling counts
//	dvvbench -experiment riak           # C3: cluster latency/traffic
//	dvvbench -experiment pruning        # C4: pruning safety
//	dvvbench -experiment ablation       # A1: DVV vs DVVSet
//	dvvbench -experiment churn          # E1: elastic membership under writes
//	dvvbench -experiment saturate       # E3: transport saturation (lockstep vs mux over real TCP)
//	dvvbench -experiment nemesis        # E4: partition convergence under a fault-injecting nemesis
//	dvvbench -experiment tiered         # D4: bounded-memory tiered engine vs all-memory
//	dvvbench -experiment merkle         # E5: anti-entropy repair cost, scan vs digest vs hash-tree walk
//	dvvbench -experiment sessions       # E6: causal sessions + per-request consistency levels
//	dvvbench -experiment overload       # E7: open-loop overload + sick replica, protected vs unprotected
//	dvvbench -churn                     # shorthand for -experiment churn
//	dvvbench -experiment nemesis -seed 7  # any experiment, reproducible fault/workload schedule
//	dvvbench -experiment nemesis -skew 30s  # nemesis with ±30s clock skew across nodes
//	dvvbench -experiment riak -csv      # CSV instead of aligned text
//	dvvbench -json > BENCH_N.json       # machine-readable snapshot of all tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dvvbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dvvbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "fig1|verdict|compare|metadata|siblings|riak|pruning|ablation|churn|crash|durability|saturate|nemesis|tiered|merkle|sessions|overload|all")
		churn      = fs.Bool("churn", false, "shorthand for -experiment churn (elastic membership scenario)")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = fs.Bool("json", false, "emit one JSON document with every table (for BENCH_*.json trajectory snapshots)")
		seed       = fs.Int64("seed", 42, "seed for every randomised experiment (fig1, verdict and compare are deterministic replays)")
		ops        = fs.Int("ops", 0, "override operation count (riak)")
		clients    = fs.Int("clients", 0, "override client count (riak)")
		nodes      = fs.Int("nodes", 0, "override node count (riak)")
		shards     = fs.Int("shards", 0, "override storage lock shards per node (riak, 0 = default)")
		skew       = fs.Duration("skew", 0, "inject ±skew clock offsets across nodes (nemesis)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// jsonTable is one experiment table in the -json snapshot format;
	// BENCH_*.json files checked in per PR are arrays of these, so future
	// sessions can diff benchmark trajectories mechanically.
	type jsonTable struct {
		Experiment string     `json:"experiment"`
		Title      string     `json:"title"`
		Headers    []string   `json:"headers"`
		Rows       [][]string `json:"rows"`
	}
	var collected []jsonTable
	current := ""

	emit := func(tables ...*stats.Table) {
		for _, t := range tables {
			switch {
			case *jsonOut:
				rows := t.Rows
				if rows == nil {
					rows = [][]string{}
				}
				collected = append(collected, jsonTable{
					Experiment: current, Title: t.Title, Headers: t.Headers, Rows: rows,
				})
			case *csv:
				fmt.Println("# " + t.Title)
				fmt.Print(t.CSV())
			default:
				fmt.Println(t.String())
			}
		}
	}

	runOne := func(name string) error {
		current = name
		start := time.Now()
		switch name {
		case "fig1":
			emit(sim.RunFigure1())
		case "verdict":
			emit(sim.Figure1Verdict())
		case "compare":
			emit(sim.RunCompareCost(sim.DefaultCompareConfig()))
		case "metadata":
			cfg := sim.DefaultMetadataConfig()
			cfg.Seed = *seed
			emit(sim.RunMetadataSweep(cfg))
		case "siblings":
			cfg := sim.DefaultMetadataConfig()
			cfg.Seed = *seed
			emit(sim.RunSiblingSweep(cfg))
		case "riak":
			cfg := sim.DefaultRiakConfig()
			cfg.Seed = *seed
			if *ops > 0 {
				cfg.Ops = *ops
			}
			if *clients > 0 {
				cfg.Clients = *clients
			}
			if *nodes > 0 {
				cfg.Nodes = *nodes
			}
			if *shards > 0 {
				cfg.StoreShards = *shards
			}
			_, table, err := sim.RunRiak(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "pruning":
			cfg := sim.DefaultPruningConfig()
			cfg.Seed = *seed
			emit(sim.RunPruningSafety(cfg))
		case "churn":
			cfg := sim.DefaultChurnConfig()
			cfg.Seed = *seed
			if *clients > 0 {
				cfg.Clients = *clients
			}
			if *shards > 0 {
				cfg.StoreShards = *shards
			}
			_, table, err := sim.RunChurn(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "crash":
			cfg := sim.DefaultCrashConfig()
			cfg.Seed = *seed
			if *clients > 0 {
				cfg.Clients = *clients
			}
			if *shards > 0 {
				cfg.StoreShards = *shards
			}
			_, table, err := sim.RunCrash(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "saturate":
			cfg := sim.DefaultSaturateConfig()
			cfg.Seed = *seed
			if *ops > 0 {
				cfg.OpsPerClient = *ops
			}
			if *clients > 0 {
				cfg.ClientLevels = []int{*clients}
			}
			if *nodes > 0 {
				cfg.Nodes = *nodes
			}
			_, table, err := sim.RunSaturate(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "durability":
			cfg := sim.DefaultDurabilityConfig()
			cfg.Seed = *seed
			table, err := sim.RunDurabilityOverhead(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "tiered":
			cfg := sim.DefaultTieredConfig()
			cfg.Seed = *seed
			table, err := sim.RunTieredStorage(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "merkle":
			cfg := sim.DefaultMerkleConfig()
			cfg.Seed = *seed
			_, table, err := sim.RunMerkleAE(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "sessions":
			cfg := sim.DefaultSessionsConfig()
			cfg.Seed = *seed
			if *nodes > 0 {
				cfg.Nodes = *nodes
			}
			_, table, err := sim.RunSessions(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "nemesis":
			cfg := sim.DefaultNemesisConfig()
			cfg.Seed = *seed
			if *nodes > 0 {
				cfg.Nodes = *nodes
			}
			if *shards > 0 {
				cfg.StoreShards = *shards
			}
			cfg.ClockSkew = *skew
			_, table, err := sim.RunNemesis(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "overload":
			cfg := sim.DefaultOverloadConfig()
			cfg.Seed = *seed
			if *nodes > 0 {
				cfg.Nodes = *nodes
			}
			if *shards > 0 {
				cfg.StoreShards = *shards
			}
			_, table, err := sim.RunOverload(cfg)
			if err != nil {
				return err
			}
			emit(table)
		case "ablation":
			acfg := sim.DefaultAblationConfig()
			acfg.Seed = *seed
			emit(sim.RunDVVSetAblation(acfg), sim.RunAblationTrace(acfg))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	finish := func() error {
		if !*jsonOut {
			return nil
		}
		out, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}

	if *churn {
		*experiment = "churn"
	}
	if *experiment == "all" {
		for _, name := range []string{"fig1", "verdict", "compare", "metadata", "siblings", "riak", "pruning", "ablation", "churn", "crash", "durability", "tiered", "saturate", "nemesis", "merkle", "sessions", "overload"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return finish()
	}
	if err := runOne(*experiment); err != nil {
		return err
	}
	return finish()
}
