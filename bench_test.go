// Benchmarks regenerating the paper's quantitative claims; each family
// maps to a row of the experiment index in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// C1  BenchmarkCompare*            — O(1) DVV check vs O(n) VV compare
// C2  BenchmarkMetadataGrowth*     — per-version metadata vs writer count
// C3  BenchmarkCluster*            — request path cost per mechanism
// C4  BenchmarkPruningCompare      — anomaly accounting cost (oracle diff)
// A1  BenchmarkDVVSet*             — compact set vs per-version clocks
// S1  BenchmarkStoreParallel*      — sharded store vs single-mutex baseline
package dvv_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	dvv "repro"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/storage"
	"repro/internal/svv"
	"repro/internal/vv"
)

var (
	sinkBool  bool
	sinkInt   int
	sinkBytes []byte
)

// wideVectors builds a dominated/dominating VV pair with n entries and the
// corresponding DVV clocks.
func wideVectors(n int) (a, b dvv.Clock, va, vb dvv.VV) {
	va, vb = dvv.NewContext(), dvv.NewContext()
	for i := 0; i < n; i++ {
		id := dvv.ID(fmt.Sprintf("s%05d", i))
		va.Set(id, 3)
		vb.Set(id, 4)
	}
	a = dvv.NewClock(dvv.NewDot("s00000", 4), va.Clone())
	b = dvv.NewClock(dvv.NewDot("s00001", 5), vb.Clone())
	return
}

// C1 — the headline O(1) vs O(n) comparison.
func BenchmarkCompareDVVDotCheck(b *testing.B) {
	for _, n := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			ca, cb, _, _ := wideVectors(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkBool = ca.Before(cb)
			}
		})
	}
}

func BenchmarkCompareVVDescends(b *testing.B) {
	for _, n := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			_, _, va, vb := wideVectors(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkBool = vb.Descends(va)
			}
		})
	}
}

func BenchmarkCompareSVVSummary(b *testing.B) {
	for _, n := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			_, _, va, vb := wideVectors(n)
			sa, sb := svv.FromVV(va), svv.FromVV(vb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkBool = sa.Descends(sb) // summary fast-reject path
			}
		})
	}
}

// Kernel operation costs.
func BenchmarkKernelPut(b *testing.B) {
	var s []dvv.Clock
	_, s = dvv.Put(s, dvv.NewContext(), "A")
	ctx := dvv.Context(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out := dvv.Put(s, ctx, "A")
		sinkInt = len(out)
	}
}

func BenchmarkKernelSync(b *testing.B) {
	for _, siblings := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("siblings-%d", siblings), func(b *testing.B) {
			var s1 []dvv.Clock
			_, s1 = dvv.Put(s1, dvv.NewContext(), "A")
			base := dvv.Context(s1)
			for i := 1; i < siblings; i++ {
				_, s1 = dvv.Put(s1, base, dvv.ID(fmt.Sprintf("S%d", i%3)))
			}
			s2 := dvv.Sync(s1, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkInt = len(dvv.Sync(s1, s2))
			}
		})
	}
}

// C2 — per-version metadata bytes as the writer count grows. The benches
// report bytes/version as a custom metric so `-bench Metadata` prints the
// paper's series.
func BenchmarkMetadataGrowth(b *testing.B) {
	for _, mechName := range []string{"dvv", "clientvv"} {
		for _, clients := range []int{4, 32, 256} {
			b.Run(fmt.Sprintf("%s/clients-%d", mechName, clients), func(b *testing.B) {
				m := dvv.Mechanisms()[mechName]
				cfg := oracle.TraceConfig{
					Ops: clients * 8, Replicas: 3, Clients: clients,
					PSync: 0.15, PStale: 0.4,
				}
				trace := oracle.RandomTrace(rand.New(rand.NewSource(42)), cfg)
				b.ResetTimer()
				var maxVersionBytes int
				for i := 0; i < b.N; i++ {
					run := oracle.NewRun(m, 3)
					if err := run.Replay(trace); err != nil {
						b.Fatal(err)
					}
					maxVersionBytes = run.MaxVersionBytes
				}
				b.ReportMetric(float64(maxVersionBytes), "bytes/version")
			})
		}
	}
}

// C3 — request path cost over the in-memory cluster (no injected
// latency: measures protocol + clock overhead only).
func BenchmarkClusterPut(b *testing.B) {
	for _, mechName := range []string{"dvv", "dvvset", "clientvv"} {
		b.Run(mechName, func(b *testing.B) {
			c, err := dvv.NewCluster(dvv.ClusterConfig{
				Mech: dvv.Mechanisms()[mechName], Nodes: 5, N: 3, R: 2, W: 2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			cl := c.NewClient("bench", dvv.RouteCoordinator)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := cl.Put(ctx, fmt.Sprintf("key-%d", i%64), []byte("value")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClusterGet(b *testing.B) {
	for _, mechName := range []string{"dvv", "dvvset", "clientvv"} {
		b.Run(mechName, func(b *testing.B) {
			c, err := dvv.NewCluster(dvv.ClusterConfig{
				Mech: dvv.Mechanisms()[mechName], Nodes: 5, N: 3, R: 2, W: 2, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			cl := c.NewClient("bench", dvv.RouteCoordinator)
			ctx := context.Background()
			for i := 0; i < 64; i++ {
				if err := cl.Put(ctx, fmt.Sprintf("key-%d", i), []byte("value")); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Get(ctx, fmt.Sprintf("key-%d", i%64)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// C4 — cost of the anomaly instrument itself (oracle lockstep compare).
func BenchmarkPruningCompare(b *testing.B) {
	cfg := oracle.TraceConfig{Ops: 200, Replicas: 3, Clients: 16, PSync: 0.15, PStale: 0.5}
	trace := oracle.RandomTrace(rand.New(rand.NewSource(7)), cfg)
	m := core.NewPrunedClientVV(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracle.Compare(m, trace, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// A1 — compact set vs per-version clocks on the storm shape.
func BenchmarkDVVSetUpdate(b *testing.B) {
	s := dvv.NewSet[[]byte]()
	s.Update(vv.New(), []byte("base"), "A")
	ctx := s.Join()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.Clone()
		c.Update(ctx, []byte("sibling"), "A")
		sinkInt = c.Len()
	}
}

func BenchmarkDVVSetSync(b *testing.B) {
	a := dvv.NewSet[[]byte]()
	a.Update(vv.New(), []byte("base"), "A")
	ctx := a.Join()
	for i := 0; i < 8; i++ {
		a.Update(ctx, []byte("sib"), "A")
	}
	peer := a.Clone()
	peer.Update(peer.Join(), []byte("w"), "B")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := a.Clone()
		c.Sync(peer)
		sinkInt = c.Len()
	}
}

// S1 — storage engine contention. The same Get/Put workload runs against
// the sharded engine and the one-shard (single-RWMutex) baseline at
// several goroutine counts; the sharded store must not lose throughput as
// goroutines are added. GOMAXPROCS is pinned per sub-benchmark so
// "goroutines-N" means exactly N concurrent workers under b.RunParallel.
func benchStoreParallel(b *testing.B, putEvery int) {
	for _, shards := range []int{1, 64} {
		for _, goroutines := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("shards-%d/goroutines-%d", shards, goroutines), func(b *testing.B) {
				m := core.NewDVV()
				s := storage.NewSharded(m, shards)
				const keyspace = 512
				keys := make([]string, keyspace)
				for i := range keys {
					keys[i] = fmt.Sprintf("key-%04d", i)
					if _, err := s.Put(keys[i], m.EmptyContext(), []byte("seed"),
						core.WriteInfo{Server: "S1", Client: "seeder"}); err != nil {
						b.Fatal(err)
					}
				}
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(goroutines))
				var gid atomic.Uint64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					g := gid.Add(1)
					wi := core.WriteInfo{Server: "S1", Client: dvv.ID(fmt.Sprintf("c%d", g))}
					h := g * 0x9E3779B97F4A7C15 // per-goroutine key walk
					for n := uint64(0); pb.Next(); n++ {
						h += 0x9E3779B97F4A7C15
						key := keys[(h>>32)%keyspace]
						if putEvery > 0 && n%uint64(putEvery) == 0 {
							rr, _ := s.Get(key)
							if _, err := s.Put(key, rr.Ctx, []byte("value"), wi); err != nil {
								b.Error(err)
								return
							}
						} else if _, ok := s.Get(key); !ok {
							b.Error("seeded key missing")
							return
						}
					}
				})
			})
		}
	}
}

func BenchmarkStoreParallelGet(b *testing.B) { benchStoreParallel(b, 0) }

func BenchmarkStoreParallelMixed(b *testing.B) { benchStoreParallel(b, 4) } // 1 read-modify-write per 4 ops

// Codec costs (the measurement instrument).
func BenchmarkCodecEncodeClock(b *testing.B) {
	c, _, _, _ := wideVectors(16)
	w := codec.NewWriter(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		codec.EncodeClock(w, c)
		sinkBytes = w.Bytes()
	}
}

func BenchmarkCodecDecodeClock(b *testing.B) {
	c, _, _, _ := wideVectors(16)
	w := codec.NewWriter(512)
	codec.EncodeClock(w, c)
	raw := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := codec.NewReader(raw)
		cc := codec.DecodeClock(r)
		sinkInt = cc.Size()
	}
}
