package dvv_test

import (
	"testing"

	dvv "repro"
)

func TestClockConstructors(t *testing.T) {
	d := dvv.NewDot("A", 2)
	past := dvv.NewContext()
	past.Set("A", 1)
	c := dvv.NewClock(d, past)
	if c.Dot() != d || !c.Past().Equal(past) {
		t.Fatalf("NewClock = %v", c)
	}
	if c.Detached() {
		t.Fatal("(A,2){A:1} is contiguous")
	}
	gappedPast := dvv.NewContext()
	gappedPast.Set("A", 1)
	gapped := dvv.NewClock(dvv.NewDot("A", 3), gappedPast)
	if !gapped.Detached() {
		t.Fatal("(A,3){A:1} must be detached")
	}
}

func TestUpdateDirect(t *testing.T) {
	var s []dvv.Clock
	_, s = dvv.Put(s, dvv.NewContext(), "A")
	ctx := dvv.Context(s)
	nc := dvv.Update(s, ctx, "A")
	if nc.Dot() != dvv.NewDot("A", 2) {
		t.Fatalf("Update dot = %v", nc.Dot())
	}
	// Update does not mutate the sibling set.
	if len(s) != 1 {
		t.Fatalf("siblings mutated: %v", s)
	}
}

func TestJoinVV(t *testing.T) {
	a := dvv.NewContext()
	a.Set("A", 2)
	b := dvv.NewContext()
	b.Set("B", 3)
	j := dvv.JoinVV(a, b)
	if j.Get("A") != 2 || j.Get("B") != 3 {
		t.Fatalf("JoinVV = %v", j)
	}
}

func TestAllMechanismConstructors(t *testing.T) {
	mechs := []dvv.Mechanism{
		dvv.NewDVVMechanism(),
		dvv.NewDVVSetMechanism(),
		dvv.NewClientVVMechanism(),
		dvv.NewServerVVMechanism(),
		dvv.NewPrunedClientVVMechanism(4),
		dvv.NewVVEMechanism(),
		dvv.NewOracleMechanism(),
	}
	seen := map[string]bool{}
	for _, m := range mechs {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("bad or duplicate mechanism name %q", m.Name())
		}
		seen[m.Name()] = true
		// Every mechanism round-trips a minimal write through the façade
		// types.
		st := m.NewState()
		st, err := m.Put(st, m.EmptyContext(), []byte("v"), dvv.WriteInfo{Server: "S", Client: "c"})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got := m.Read(st); len(got.Values) != 1 || string(got.Values[0]) != "v" {
			t.Fatalf("%s read = %v", m.Name(), got.Values)
		}
	}
}

func TestRoutingConstantsDistinct(t *testing.T) {
	if dvv.RouteCoordinator == dvv.RouteRandom {
		t.Fatal("routing policies must differ")
	}
}
