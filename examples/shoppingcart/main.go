// Shopping cart: the classic Dynamo motivating example on a live 5-node
// cluster with DVV causality. Two shoppers race updates to the same cart
// through different sessions; the fork is detected (siblings), merged by
// the application, and the merge write converges the cart.
//
//	go run ./examples/shoppingcart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	dvv "repro"
)

// cart is the application value: a set of items encoded as a sorted
// comma-separated list.
func parseCart(b []byte) map[string]bool {
	items := map[string]bool{}
	for _, it := range strings.Split(string(b), ",") {
		if it != "" {
			items[it] = true
		}
	}
	return items
}

func renderCart(items map[string]bool) []byte {
	out := make([]string, 0, len(items))
	for it := range items {
		out = append(out, it)
	}
	sort.Strings(out)
	return []byte(strings.Join(out, ","))
}

// mergeSiblings unions all concurrent carts — the shopping-cart CRDT-ish
// resolution: nothing ever falls out of the cart on merge.
func mergeSiblings(siblings [][]byte) []byte {
	merged := map[string]bool{}
	for _, s := range siblings {
		for it := range parseCart(s) {
			merged[it] = true
		}
	}
	return renderCart(merged)
}

func main() {
	cluster, err := dvv.NewCluster(dvv.ClusterConfig{
		Mech:  dvv.NewDVVMechanism(),
		Nodes: 5, N: 3, R: 2, W: 2,
		Seed: 2012,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ctx := context.Background()
	alice := cluster.NewClient("alice", dvv.RouteCoordinator)
	bob := cluster.NewClient("bob", dvv.RouteCoordinator)

	const key = "cart:order-42"

	// Alice starts the cart.
	must(alice.Put(ctx, key, []byte("book")))
	fmt.Println("alice put: book")

	// Both read the same cart state...
	av, _ := alice.Get(ctx, key)
	bv, _ := bob.Get(ctx, key)
	fmt.Printf("alice sees %q, bob sees %q\n", av, bv)

	// ...and race their updates (each writes from their own session).
	must(alice.Put(ctx, key, append(mergeSiblings(av), []byte(",laptop")...)))
	must(bob.Put(ctx, key, append(mergeSiblings(bv), []byte(",pencil")...)))
	fmt.Println("alice added laptop; bob added pencil (concurrently)")

	// The store kept BOTH versions: DVV tagged them as concurrent
	// siblings instead of letting one overwrite the other.
	siblings, _ := alice.Get(ctx, key)
	fmt.Printf("cart now has %d sibling version(s):\n", len(siblings))
	for i, s := range siblings {
		fmt.Printf("  sibling %d: %s\n", i+1, s)
	}

	// Application-level merge: union the carts, write back with the
	// context covering both siblings (alice just read them).
	must(alice.Put(ctx, key, mergeSiblings(siblings)))
	final, _ := bob.Get(ctx, key)
	fmt.Printf("after merge write: %d version — %s\n", len(final), final[0])
	fmt.Println("nothing was lost, nothing was duplicated; metadata stayed at one vector entry per replica server")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
