// Multiwriter: the paper's scaling argument, live. A growing crowd of
// clients hammers ONE key through a 3-way-replicated cluster, once under
// client-entry version vectors (Riak ≤1.x style) and once under DVV. The
// program prints the causal metadata resident for the key as the writer
// count grows: client-VV metadata grows with the crowd, DVV stays bounded
// by the replica count.
//
//	go run ./examples/multiwriter
package main

import (
	"context"
	"fmt"
	"log"

	dvv "repro"
	"repro/internal/stats"
)

func main() {
	table := stats.NewTable(
		"one hot key, 3 replicas — resident causal metadata after N racing writers",
		"writers", "clientvv bytes", "dvv bytes", "clientvv/dvv")
	for _, writers := range []int{2, 8, 32, 128} {
		cvBytes := run(dvv.NewClientVVMechanism(), writers)
		dvvBytes := run(dvv.NewDVVMechanism(), writers)
		ratio := float64(cvBytes) / float64(dvvBytes)
		table.AddRow(writers, cvBytes, dvvBytes, fmt.Sprintf("%.1fx", ratio))
	}
	fmt.Println(table.String())
	fmt.Println("The client-VV tags accumulate one entry per writer identity that")
	fmt.Println("ever touched the key; the DVV tags never exceed one entry per")
	fmt.Println("replica server plus the dot — the paper's headline claim.")
}

// run puts `writers` racing clients on one key and returns the max
// per-key metadata bytes resident at any replica afterwards.
func run(mech dvv.Mechanism, writers int) int {
	cluster, err := dvv.NewCluster(dvv.ClusterConfig{
		Mech: mech, Nodes: 3, N: 3, R: 2, W: 2, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	const key = "hot-key"

	seed := cluster.NewClient("seeder", dvv.RouteCoordinator)
	if err := seed.Put(ctx, key, []byte("v0")); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < writers; i++ {
		c := cluster.NewClient("", dvv.RouteCoordinator)
		// Every writer reads (so its vector covers the seed write) and
		// then writes; half the crowd re-reads first (dominating write),
		// half writes from the stale read (racing sibling).
		if _, err := c.Get(ctx, key); err != nil {
			log.Fatal(err)
		}
		if err := c.Put(ctx, key, []byte(fmt.Sprintf("w%03d", i))); err != nil {
			log.Fatal(err)
		}
	}
	return cluster.MaxKeyMetadataBytes(key)
}
