// Quickstart: the dotted-version-vector clock API in 60 seconds.
//
//	go run ./examples/quickstart
//
// It walks the paper's core scenario at the clock level: a server tags
// client writes, a stale client forks a sibling, causality checks are one
// map lookup, and replica sync discards dominated versions.
package main

import (
	"fmt"

	dvv "repro"
)

func main() {
	fmt.Println("== dotted version vectors: quickstart ==")

	// A server "A" stores versions of one key. The sibling set starts
	// empty; a first write carries the empty causal context.
	var siblings []dvv.Clock
	w1, siblings := dvv.Put(siblings, dvv.NewContext(), "A")
	fmt.Printf("w1 tagged %v (first write at server A)\n", w1)

	// A reader obtains the causal context of what it saw...
	ctx := dvv.Context(siblings)
	fmt.Printf("reader context: %v\n", ctx)

	// ...and overwrites it: the new clock's past is exactly the context.
	w2, siblings := dvv.Put(siblings, ctx, "A")
	fmt.Printf("w2 tagged %v — dominates w1? %v\n", w2, w1.Before(w2))

	// A second client still holding the OLD context writes concurrently.
	// The dot (A,3) is detached from the past {A:1} — the gap encodes
	// "never saw (A,2)".
	w3, siblings := dvv.Put(siblings, ctx, "A")
	fmt.Printf("w3 tagged %v — concurrent with w2? %v\n", w3, w3.Concurrent(w2))
	fmt.Printf("server now holds %d siblings\n", len(siblings))

	// Causality verification is O(1): is w1's event in w3's past?
	fmt.Printf("w1 < w3? %v (one map lookup: %v contains %v)\n",
		w1.Before(w3), w3.Past(), w1.Dot())

	// Replica sync keeps exactly the concurrent frontier.
	replicaB := []dvv.Clock{w2.Clone()}
	merged := dvv.Sync(siblings, replicaB)
	fmt.Printf("after sync with a replica holding only w2: %d siblings (w1, dominated, is gone)\n", len(merged))

	// A final read-modify-write resolves the fork.
	w5, merged := dvv.Put(merged, dvv.Context(merged), "A")
	fmt.Printf("w5 tagged %v resolves everything; siblings = %d\n", w5, len(merged))
}
