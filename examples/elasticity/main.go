// Elasticity walkthrough: a cluster that grows and shrinks under load.
//
//	go run ./examples/elasticity
//
// A 5-node cluster serves continuous client writes while one node joins
// and one node leaves. Sloppy quorums and hinted handoff keep every
// write acknowledged; the membership handoff streams re-owned keys to
// their new owners. At the end the program drains the hint backlog and
// verifies that the last acknowledged value of every key is exactly what
// a fresh reader sees — no acknowledged write lost, no false conflict
// manufactured. This is precisely the elasticity story dotted version
// vectors make safe: causality is tracked per replica server, so keys
// can move between servers with their clocks intact.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	dvv "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "elasticity:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== elastic membership: join and leave under continuous writes ==")
	c, err := dvv.NewCluster(dvv.ClusterConfig{
		Mech:  dvv.NewDVVMechanism(),
		Nodes: 5, N: 3, R: 2, W: 2,
		ReadRepair:      true,
		HintedHandoff:   true,
		SloppyQuorum:    true,
		SuspicionWindow: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("started %d nodes, N=3 R=2 W=2, sloppy quorums + hinted handoff on\n\n", len(c.Nodes))

	// 16 writer sessions, one key each, read-modify-write chains: each
	// acknowledged write causally dominates everything that client saw,
	// so each key's expected final state is exactly its last acked value.
	const writers = 16
	const writesPerClient = 50
	ctx := context.Background()
	lastAcked := make([]string, writers)
	var acked atomic.Int64
	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := c.NewClient(dvv.ID(fmt.Sprintf("writer-%02d", i)), dvv.RouteCoordinator)
			key := fmt.Sprintf("cart-%02d", i)
			for seq := 1; seq <= writesPerClient; seq++ {
				val := fmt.Sprintf("w%02d-item%03d", i, seq)
				for attempt := 0; attempt < 1000; attempt++ {
					if _, err := cl.Get(ctx, key); err != nil {
						continue // churn blip: retry
					}
					if err := cl.Put(ctx, key, []byte(val)); err != nil {
						continue
					}
					lastAcked[i] = val
					acked.Add(1)
					break
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	// Wait for write progress; bail out if the writers finish first so an
	// unreachable threshold can't hang the walkthrough.
	waitAcks := func(n int64) {
		for acked.Load() < n {
			select {
			case <-writersDone:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}

	// Membership events mid-stream.
	waitAcks(writers * writesPerClient / 3)
	joiner, err := c.AddNode("")
	if err != nil {
		return fmt.Errorf("add node: %w", err)
	}
	fmt.Printf("[%4d acks] node %s JOINED — keys handed to it: %d\n",
		acked.Load(), joiner.ID(), joiner.Store().Len())

	waitAcks(2 * writers * writesPerClient / 3)
	victim := c.Nodes[1].ID()
	victimKeys := 0
	for _, n := range c.Nodes {
		if n.ID() == victim {
			victimKeys = n.Store().Len()
		}
	}
	if err := c.RemoveNode(victim); err != nil {
		return fmt.Errorf("remove node: %w", err)
	}
	fmt.Printf("[%4d acks] node %s LEFT — its %d keys streamed to new owners\n",
		acked.Load(), victim, victimKeys)

	wg.Wait()
	fmt.Printf("[%4d acks] writers done\n\n", acked.Load())

	// Drain the hint backlog and report the elasticity counters.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	pending := 0
	var sloppy, replFail, hintsS, hintsD, handoff uint64
	for _, n := range c.Nodes {
		if err := n.WaitHintsDrained(dctx); err != nil {
			return err
		}
		pending += n.PendingHints()
		st := n.Stats()
		sloppy += st.SloppyAcks
		replFail += st.ReplFailures
		hintsS += st.HintsStored
		hintsD += st.HintsDelivered
		handoff += st.HandoffKeys
	}
	fmt.Println("elasticity counters across surviving nodes:")
	fmt.Printf("  sloppy acks (fallback stood in for a dead replica): %d\n", sloppy)
	fmt.Printf("  replica send failures absorbed:                     %d\n", replFail)
	fmt.Printf("  hints stored/delivered:                             %d/%d\n", hintsS, hintsD)
	fmt.Printf("  keys streamed by membership handoff:                %d\n", handoff)
	fmt.Printf("  hints still pending after drain:                    %d\n\n", pending)
	if pending != 0 {
		return fmt.Errorf("hint backlog did not drain: %d pending", pending)
	}

	// The oracle: every key must read back exactly its last acked value.
	verifier := c.NewClient("verifier", dvv.RouteCoordinator)
	lost, conflicts := 0, 0
	for i := 0; i < writers; i++ {
		if lastAcked[i] == "" {
			continue // nothing ever acknowledged for this key
		}
		key := fmt.Sprintf("cart-%02d", i)
		vals, err := verifier.Get(ctx, key)
		if err != nil {
			return fmt.Errorf("verify %s: %w", key, err)
		}
		distinct := map[string]bool{}
		for _, v := range vals {
			distinct[string(v)] = true
		}
		if !distinct[lastAcked[i]] {
			lost++
			fmt.Printf("  LOST: %s acked %q but reads %v\n", key, lastAcked[i], vals)
		}
		if len(distinct) > 1 {
			conflicts++
			fmt.Printf("  FALSE CONFLICT: %s has %d distinct values\n", key, len(distinct))
		}
	}
	fmt.Printf("verification over %d keys: %d lost acked writes, %d false conflicts\n",
		writers, lost, conflicts)
	if lost != 0 || conflicts != 0 {
		return fmt.Errorf("divergence detected")
	}
	fmt.Println("every acknowledged write survived the churn ✓")
	return nil
}
