// Pruning hazard: the paper's safety argument, live. The same racing
// trace is replayed under (a) client-entry version vectors with Riak-style
// optimistic pruning and (b) dotted version vectors, both checked in
// lockstep against exact causal histories. Pruning forgets dots, so
// overwritten siblings resurface as false concurrency — with fewer bytes
// of metadata than DVV needs to stay exact.
//
//	go run ./examples/pruninghazard
package main

import (
	"fmt"
	"log"
	"math/rand"

	dvv "repro"
	"repro/internal/oracle"
	"repro/internal/stats"
)

func main() {
	cfg := oracle.TraceConfig{
		Ops:      500,
		Replicas: 3,
		Clients:  32,
		PSync:    0.15,
		PStale:   0.5, // half the writes race on stale contexts
	}
	table := stats.NewTable(
		"500 racing ops, 32 clients, 3 replicas — anomalies vs exact causal histories",
		"mechanism", "lost updates", "false concurrency", "permanently divergent", "max metadata B")
	for _, m := range []dvv.Mechanism{
		dvv.NewPrunedClientVVMechanism(4),
		dvv.NewClientVVMechanism(),
		dvv.NewDVVMechanism(),
	} {
		trace := oracle.RandomTrace(rand.New(rand.NewSource(2012)), cfg)
		anomalies, err := oracle.Compare(m, trace, cfg.Replicas)
		if err != nil {
			log.Fatal(err)
		}
		run := oracle.NewRun(m, cfg.Replicas)
		if err := run.Replay(trace); err != nil {
			log.Fatal(err)
		}
		table.AddRow(m.Name(), anomalies.LostUpdates, anomalies.FalseConcurrency,
			anomalies.FinalLost+anomalies.FinalFalse, run.MaxMetadataBytes)
	}
	fmt.Println(table.String())
	fmt.Println(`Reading the table:
  * prunedvv-4 caps every tag at 4 entries — bounded metadata, but the
    forgotten dots cause overwritten versions to reappear as (false)
    concurrent siblings, some of which never converge away.
  * clientvv is exact but needs unbounded per-writer entries.
  * dvv is exact AND bounded — one vector entry per replica server plus
    the dot. This is the trade the paper resolves.`)
}
