// Figure 1, replayed: prints the paper's three panels side by side —
// (a) causal histories, (b) per-server version vectors with the lost
// update highlighted, (c) dotted version vectors — plus the verdict
// table.
//
//	go run ./examples/figure1
package main

import (
	"fmt"

	"repro/internal/sim"
)

func main() {
	fmt.Println(sim.RunFigure1().String())
	fmt.Println(sim.Figure1Verdict().String())
	fmt.Println(`Reading the table:
  * After the race (row 3), panels (a) and (c) hold two concurrent
    versions; panel (b) holds one — per-server VV [A:3] falsely dominates
    [A:2] and w2 is silently lost (the paper's "[2,0] < [3,0]" problem).
  * In panel (c) the racing versions are (A,2){A:1} and (A,3){A:1}: same
    causal past, different dots. The dot (A,3) sits beyond {A:1}+1 —
    a "detached" dot encoding the gap that plain vectors cannot express.
  * Causality checks under (c) are one lookup: a < b iff a's dot is
    covered by b's vector.`)
}
