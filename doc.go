// Package dvv is a Go implementation of dotted version vectors (Preguiça,
// Baquero, Almeida, Fonte, Gonçalves — "Brief Announcement: Efficient
// Causality Tracking in Distributed Storage Systems With Dotted Version
// Vectors", PODC 2012), together with the replicated-storage substrate the
// paper evaluates on and every baseline it compares against.
//
// The package re-exports the core clock API and the cluster substrate so
// applications can depend on a single import:
//
//	c1, s := dvv.Put(nil, dvv.NewContext(), "serverA")   // first write
//	ctx := dvv.Context(s)                                 // client context
//	c2, s := dvv.Put(s, ctx, "serverA")                   // overwrite
//	_ = c1.Before(c2)                                     // O(1) causality
//
// Three layers are exposed:
//
//   - Clock layer: Clock, VV, Dot and the server-side kernel (Update,
//     Sync, Context, Discard) — the paper's contribution in its purest
//     form (internal/dvv).
//   - Mechanism layer: the pluggable causality interface with DVV, DVVSet,
//     client-VV, server-VV, pruned-VV and causal-history implementations
//     (internal/core), used by the storage engine.
//   - Cluster layer: replica nodes, consistent-hashing ring, quorum
//     coordination, read repair and anti-entropy over in-memory or TCP
//     transports (internal/cluster et al.).
//
// The clock kernel underneath all three layers stores version vectors as
// sorted {ID, Counter} entry slices (internal/vv), not maps: iteration is
// already in canonical encoding order, lookups are binary searches, and
// the lattice operations (Join, Merge, Descends, Compare) are linear
// two-pointer walks. Clone and Join are single-allocation at any width and
// the comparison family never allocates, so clock bookkeeping stays off
// the allocator on the request path; the wire codec encodes straight from
// the entries and decodes into a pre-sized slice, interning replica ids so
// a wide vector costs one string allocation per distinct id ever seen, not
// per entry.
//
// Each replica's local state lives in a sharded storage engine
// (internal/storage): keys hash onto a power-of-two array of shards, each
// with its own RWMutex, so concurrent request handlers only contend when
// they touch the same slice of the keyspace. Per-key operations are
// linearizable per key; whole-store walks (key listing, metadata
// accounting, persistence, anti-entropy scans) proceed shard by shard and
// are per-shard-consistent rather than point-in-time — the anti-entropy
// protocol reconverges across rounds by construction. The shard count is
// configurable through node.Config.StoreShards up to the cluster and CLI
// layers; one shard reproduces the classic single-mutex store.
//
// The cluster is elastic: nodes join and leave at runtime
// (cluster.AddNode/RemoveNode in-process; member.join/member.leave gossip
// over TCP), with a handoff protocol that streams re-owned keys to their
// new owners and sloppy quorums + hinted handoff keeping writes
// acknowledged while members fail or depart. Dotted version vectors make
// this safe by construction — causality is tracked per replica server, so
// a key moving between servers keeps an exact clock.
//
// Inter-replica traffic moves over a multiplexed transport
// (transport.Mux): one long-lived TCP connection per peer pair carries
// concurrent in-flight requests correlated by id, a writer goroutine
// coalesces queued frames into single kernel writes, and request
// deadlines fail requests without tearing the shared connection down.
// Above it, replica-state pushes — put fan-out, read repair, hints,
// anti-entropy — coalesce per destination into batched repl.batch frames
// (node.Config.ReplBatchKeys), cutting messages per acknowledged put by
// more than half under concurrency; the E3 saturation experiment
// (dvvbench -experiment saturate) measures the whole path over real TCP
// loopback against the lockstep baseline.
//
// Replicas are crash-safe when given a data directory (storage.Open,
// node.Config.DataDir, dvvstore -data): every mutation is written ahead
// to a CRC-framed, group-committed log before it is installed or acked,
// checkpoints write atomic snapshots and truncate the log, and recovery
// replays snapshot-then-WAL through the mechanism's Sync merge —
// idempotent, torn-tail tolerant, and dot-counter safe, so a restarted
// replica never re-mints a dot it issued before the crash.
//
// The experiment harness that regenerates the paper's figures lives in
// internal/sim and is exposed through cmd/dvvbench; EXPERIMENTS.md records
// paper-vs-measured results.
//
// ARCHITECTURE.md in the repository root maps every layer and walks the
// four request lifecycles (quorum put, quorum get + read repair, hinted
// handoff, Merkle anti-entropy) with the functions that implement them;
// runnable usage lives in example_test.go and examples/.
package dvv
