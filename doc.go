// Package dvv is a Go implementation of dotted version vectors (Preguiça,
// Baquero, Almeida, Fonte, Gonçalves — "Brief Announcement: Efficient
// Causality Tracking in Distributed Storage Systems With Dotted Version
// Vectors", PODC 2012), together with the replicated-storage substrate the
// paper evaluates on and every baseline it compares against.
//
// The package re-exports the core clock API and the cluster substrate so
// applications can depend on a single import:
//
//	c1, s := dvv.Put(nil, dvv.NewContext(), "serverA")   // first write
//	ctx := dvv.Context(s)                                 // client context
//	c2, s := dvv.Put(s, ctx, "serverA")                   // overwrite
//	_ = c1.Before(c2)                                     // O(1) causality
//
// Three layers are exposed:
//
//   - Clock layer: Clock, VV, Dot and the server-side kernel (Update,
//     Sync, Context, Discard) — the paper's contribution in its purest
//     form (internal/dvv).
//   - Mechanism layer: the pluggable causality interface with DVV, DVVSet,
//     client-VV, server-VV, pruned-VV and causal-history implementations
//     (internal/core), used by the storage engine.
//   - Cluster layer: replica nodes, consistent-hashing ring, quorum
//     coordination, read repair and anti-entropy over in-memory or TCP
//     transports (internal/cluster et al.).
//
// The experiment harness that regenerates the paper's figures lives in
// internal/sim and is exposed through cmd/dvvbench; EXPERIMENTS.md records
// paper-vs-measured results.
package dvv
