package dvv_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	dvv "repro"
)

func TestQuickstartFlow(t *testing.T) {
	// The README quickstart, verified.
	var s []dvv.Clock
	w1, s := dvv.Put(s, dvv.NewContext(), "serverA")
	if w1.Dot() != dvv.NewDot("serverA", 1) {
		t.Fatalf("w1 = %v", w1)
	}
	ctx := dvv.Context(s)
	w2, s := dvv.Put(s, ctx, "serverA")
	if !w1.Before(w2) {
		t.Fatal("w2 must dominate w1")
	}
	if len(s) != 1 {
		t.Fatalf("siblings = %v", s)
	}
	// A concurrent write with the stale context forks.
	w3, s := dvv.Put(s, ctx, "serverA")
	if !w3.Concurrent(w2) || len(s) != 2 {
		t.Fatalf("expected fork: %v", s)
	}
	// Sync is idempotent on the same set.
	if got := dvv.Sync(s, s); len(got) != 2 {
		t.Fatalf("sync = %v", got)
	}
	// Discard with the full context empties the set.
	if got := dvv.Discard(s, dvv.Context(s)); len(got) != 0 {
		t.Fatalf("discard = %v", got)
	}
}

func TestMechanismRegistryExposed(t *testing.T) {
	ms := dvv.Mechanisms()
	for _, name := range []string{"dvv", "dvvset", "clientvv", "servervv", "oracle"} {
		if _, ok := ms[name]; !ok {
			t.Errorf("missing mechanism %q", name)
		}
	}
}

func TestClusterFacade(t *testing.T) {
	c, err := dvv.NewCluster(dvv.ClusterConfig{Mech: dvv.NewDVVMechanism(), Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := c.NewClient("facade-client", dvv.RouteCoordinator)
	ctx := context.Background()
	if err := cl.Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	vals, err := cl.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(vals))
	for i, v := range vals {
		got[i] = string(v)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"v1"}) {
		t.Fatalf("get = %v", got)
	}
}

func TestSetFacade(t *testing.T) {
	s := dvv.NewSet[string]()
	s.Update(dvv.NewContext(), "a", "srv")
	s.Update(dvv.NewContext(), "b", "srv")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Update(s.Join(), "merged", "srv")
	if got := s.Values(); len(got) != 1 || got[0] != "merged" {
		t.Fatalf("Values = %v", got)
	}
}
