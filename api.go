package dvv

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dot"
	idvv "repro/internal/dvv"
	"repro/internal/dvvset"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/vv"
)

// ---------------------------------------------------------------------------
// Clock layer.
// ---------------------------------------------------------------------------

// ID identifies a node (replica server or client actor).
type ID = dot.ID

// Dot is a globally unique event identifier (node, counter).
type Dot = dot.Dot

// VV is a plain version vector — the causal-past half of a Clock and the
// client-facing causal context.
type VV = vv.VV

// Clock is a dotted version vector: an identifying Dot plus a VV past.
type Clock = idvv.Clock

// Set is a dotted version vector set — the compact representation storing
// a whole sibling set under one clock with the values inline.
type Set[V any] = dvvset.Set[V]

// NewDot builds the event identifier (node, counter).
func NewDot(node ID, counter uint64) Dot { return dot.New(node, counter) }

// NewContext returns an empty causal context (for a first/blind write).
func NewContext() VV { return vv.New() }

// NewClock builds a clock from an identifying dot and a causal past.
func NewClock(d Dot, past VV) Clock { return idvv.New(d, past) }

// NewSet returns an empty dotted version vector set.
func NewSet[V any]() *Set[V] { return dvvset.New[V]() }

// Update tags a client write coordinated by server r: the new clock's dot
// is fresh at r and its past is exactly the client's read context ctx.
func Update(siblings []Clock, ctx VV, r ID) Clock { return idvv.Update(siblings, ctx, r) }

// Put is the full coordinator-side write: Update plus discarding the
// siblings covered by ctx. It returns the new clock and the new sibling
// set (new version first).
func Put(siblings []Clock, ctx VV, r ID) (Clock, []Clock) { return idvv.Put(siblings, ctx, r) }

// Sync merges the sibling sets of two replicas, discarding versions
// causally dominated by the other side.
func Sync(a, b []Clock) []Clock { return idvv.Sync(a, b) }

// Context returns the causal context covering a sibling set — what a
// reader must present on its next write.
func Context(siblings []Clock) VV { return idvv.Context(siblings) }

// Discard drops the siblings whose identifying events are covered by ctx.
func Discard(siblings []Clock, ctx VV) []Clock { return idvv.Discard(siblings, ctx) }

// JoinVV returns the pointwise maximum of two version vectors.
func JoinVV(a, b VV) VV { return vv.Join(a, b) }

// ---------------------------------------------------------------------------
// Mechanism layer.
// ---------------------------------------------------------------------------

// Mechanism is the pluggable causality-tracking interface used by the
// storage substrate; see internal/core for the contract.
type Mechanism = core.Mechanism

// WriteInfo identifies the parties to a mechanism-level put: the
// coordinating replica server and the writing client.
type WriteInfo = core.WriteInfo

// NewDVVMechanism returns the paper's mechanism: per-version dotted
// version vectors.
func NewDVVMechanism() Mechanism { return core.NewDVV() }

// NewDVVSetMechanism returns the compact dotted-version-vector-set
// mechanism.
func NewDVVSetMechanism() Mechanism { return core.NewDVVSet() }

// NewClientVVMechanism returns the one-entry-per-client version vector
// baseline (precise, unbounded metadata).
func NewClientVVMechanism() Mechanism { return core.NewClientVV() }

// NewServerVVMechanism returns the one-entry-per-server version vector
// baseline (compact, loses concurrent client writes — Figure 1b).
func NewServerVVMechanism() Mechanism { return core.NewServerVV() }

// NewPrunedClientVVMechanism returns the client-VV baseline with
// Riak-style optimistic pruning at cap entries (bounded, unsafe).
func NewPrunedClientVVMechanism(cap int) Mechanism { return core.NewPrunedClientVV(cap) }

// NewVVEMechanism returns the version-vectors-with-exceptions mechanism
// (WinFS baseline: exact, with explicit gap bookkeeping).
func NewVVEMechanism() Mechanism { return core.NewVVE() }

// NewOracleMechanism returns the explicit causal-history oracle (exact,
// ever-growing).
func NewOracleMechanism() Mechanism { return core.NewOracle() }

// Mechanisms returns the standard registry keyed by name.
func Mechanisms() map[string]Mechanism { return core.Registry() }

// ---------------------------------------------------------------------------
// Cluster layer.
// ---------------------------------------------------------------------------

// Cluster is a running set of replica nodes (see internal/cluster).
type Cluster = cluster.Cluster

// ClusterConfig parameterises NewCluster.
type ClusterConfig = cluster.Config

// Storage engine names for ClusterConfig.Engine: EngineMemory keeps every
// key's state resident (optionally durable behind a WAL + snapshots);
// EngineTiered bounds resident state to ClusterConfig.MemBudget bytes and
// spills cold states to on-disk segments (requires DataRoot).
const (
	EngineMemory = storage.EngineMemory
	EngineTiered = storage.EngineTiered
)

// Client is a session-holding store client.
type Client = cluster.Client

// Session enforces session guarantees (read-your-writes, monotonic
// reads) on top of a Client: every request carries the session's
// accumulated causal context as a floor the coordinator must reach
// before answering.
type Session = cluster.Session

// Token is the opaque causal-context token a read returns and a write
// accepts (Riak's vclock shape) — causality that survives any medium
// carrying bytes.
type Token = cluster.Token

// Routing policies for clients.
const (
	RouteCoordinator = cluster.RouteCoordinator
	RouteRandom      = cluster.RouteRandom
	RouteOwner       = cluster.RouteOwner
)

// ReadOptions / WriteOptions carry per-request consistency knobs
// (consistency level or explicit R/W override, not-found handling, the
// write's causal context, the session floor). The zero value defers to
// the cluster's configured quorums.
type (
	ReadOptions  = node.ReadOptions
	WriteOptions = node.WriteOptions
)

// Level is a per-request consistency level for ReadOptions/WriteOptions.
type Level = node.Level

// Per-request consistency levels.
const (
	// LevelDefault uses the cluster's configured R/W quorum.
	LevelDefault = node.LevelDefault
	// LevelOne acks after a single replica — for reads, the coordinator
	// answers from its own store with zero replica round trips when the
	// session floor allows.
	LevelOne = node.LevelOne
	// LevelQuorum requires a majority of N.
	LevelQuorum = node.LevelQuorum
	// LevelAll requires every preference-list member.
	LevelAll = node.LevelAll
)

// ParseLevel parses the CLI spelling of a consistency level
// ("one", "quorum", "all", "default" or empty).
func ParseLevel(s string) (Level, error) { return node.ParseLevel(s) }

// IsNotFound reports whether err is a strict read's not-found error
// (a get with ReadOptions.NotFoundOK unset that found no value).
func IsNotFound(err error) bool { return node.IsNotFound(err) }

// NewCluster builds and starts a cluster of replica nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }
